// Static topology lint: proves structural invariants of a Machine model
// before any simulation trusts it.
//
// mr::verify::analyze(Schedule) covers one half of every experiment — the
// communication program. This header covers the other half: the Machine
// the program is bound to. Two entry points:
//
//  * analyze_spec — lints raw construction parameters (level specs,
//    messaging costs, core FLOP rate) WITHOUT constructing a Machine, so
//    nonsensical inputs (radix 0, negative bandwidth, NaN latency) are
//    reported as located diagnostics instead of a thrown precondition or,
//    worse, silently absurd simulated times;
//  * analyze — lints a constructed Machine: the spec checks above plus the
//    derived-state invariants every simnet consumer relies on
//    (component-id accounting, channel-capacity table shape and values,
//    path-latency symmetry on sampled core pairs, aggregate-bandwidth
//    taper) and preset-specific expectations for the machines the paper's
//    figures are calibrated against (hydra/lumi/testbox families).
//
// The derived-state checks re-derive everything through the public Machine
// and simnet::channel_capacities APIs, so they double as a standing oracle:
// a future fast path that breaks the component-id layout or the capacity
// table fails the lint before it can skew a single figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixradix/topo/machine.hpp"
#include "mixradix/verify/verify.hpp"

namespace mr::verify {

/// What a topology diagnostic is about.
enum class TopoCheck {
  Spec,        ///< nonsensical construction parameter (radix, bandwidth, ...)
  Accounting,  ///< component-id / channel-capacity table inconsistency
  Latency,     ///< path-latency asymmetry or sub-base-latency path
  Taper,       ///< aggregate bandwidth decreases toward the leaves
  Preset,      ///< machine violates its preset's documented shape
};

const char* to_string(TopoCheck check);

struct TopoDiagnostic {
  Severity severity = Severity::Error;
  TopoCheck check = TopoCheck::Spec;
  int level = -1;  ///< hierarchy level the finding is located at, -1 = global.
  std::string text;

  /// "error[spec] level 2 (half): ..." (level omitted when -1).
  std::string to_string() const;
};

struct TopoReport {
  std::string machine;  ///< name of the analyzed machine.
  std::vector<TopoDiagnostic> diagnostics;

  std::size_t count(Severity severity) const;
  bool clean() const { return count(Severity::Error) == 0; }
  /// One line: "2 errors, 1 warning, 0 infos".
  std::string summary() const;
  /// Full listing, one diagnostic per line, ending with the summary.
  std::string to_string() const;
};

struct TopoOptions {
  /// Core pairs sampled for the path_latency symmetry check (deterministic
  /// PRNG; every pair is also checked against the base-latency floor).
  int latency_sample_pairs = 64;
  /// Check hydra/lumi/testbox machines against their documented shapes.
  bool check_presets = true;
};

/// Lint raw Machine construction parameters. Never throws: every
/// nonsensical value becomes a located Error-level diagnostic. `name` is
/// only echoed into the report.
TopoReport analyze_spec(const std::string& name,
                        const std::vector<topo::LevelSpec>& levels,
                        const topo::MessagingCosts& costs, double core_flops,
                        const TopoOptions& options = {});

/// Lint a constructed Machine: the spec checks plus derived-state
/// invariants (accounting, capacities, latency symmetry) and preset
/// expectations.
TopoReport analyze(const topo::Machine& machine,
                   const TopoOptions& options = {});

}  // namespace mr::verify
