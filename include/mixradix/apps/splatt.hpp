// Splatt CPD proxy (Fig. 8 substrate).
//
// SPLATT computes a Canonical Polyadic Decomposition of a sparse tensor
// with a medium-grained 3-D decomposition: processes form a p1 x p2 x p3
// grid, and each mode m has "layer" communicators grouping the processes
// that share the other two grid coordinates. Per CPD iteration and mode,
// processes exchange factor-matrix rows with their layer communicator
// (MPI_Alltoallv — the operation whose duration the paper finds 0.92–0.98
// correlated with total CPD time), run the local MTTKRP kernel, and reduce
// factor Gram matrices over MPI_COMM_WORLD.
//
// The paper's input is the FROSTT nell-1 tensor (not redistributable
// here); we generate a synthetic tensor with nell-1's shape whose skewed
// per-slice nonzero distribution produces realistically imbalanced
// alltoallv volumes.
#pragma once

#include <cstdint>
#include <vector>

#include "mixradix/mr/permutation.hpp"
#include "mixradix/simmpi/schedule.hpp"
#include "mixradix/topo/machine.hpp"

namespace mr::apps::splatt {

/// Shape and density of the synthetic 3-way tensor.
struct TensorSpec {
  std::int64_t dims[3] = {0, 0, 0};
  std::int64_t nnz = 0;
  std::uint64_t seed = 0;
  double skew = 1.1;  ///< Zipf-like slice-weight exponent (imbalance).
};

/// The shape of FROSTT's nell-1 (2.9M x 2.1M x 25.5M, 143M nonzeros).
TensorSpec nell1_like(std::uint64_t seed = 42);

/// 3-D process grid. default_grid factorises nprocs with p1 >= p2 >= p3,
/// e.g. 1024 -> 16 x 8 x 8 (giving the 64 sixteen-process mode-0 layer
/// communicators mpisee observed).
struct Grid3 {
  std::int32_t p[3] = {1, 1, 1};
  std::int32_t nprocs() const { return p[0] * p[1] * p[2]; }
};
Grid3 default_grid(std::int32_t nprocs);

/// Layer communicators of `mode`: one per combination of the other two
/// grid coordinates, each listing its member application (world) ranks in
/// layer order. Grid rank layout is row-major: rank = (i * p2 + j) * p3 + k.
std::vector<std::vector<std::int32_t>> layer_comms(const Grid3& grid, int mode);

/// Alltoallv volume matrix (doubles) for one layer communicator of `mode`:
/// counts[a][b] = factor rows crossing from member a to member b times the
/// factor rank, drawn from the tensor's skewed slice distribution
/// (deterministic in spec.seed, mode, and layer id).
std::vector<std::vector<std::int64_t>> layer_volumes(const TensorSpec& spec,
                                                     const Grid3& grid, int mode,
                                                     std::int64_t layer,
                                                     std::int64_t factor_rank);

struct CpdConfig {
  std::int64_t factor_rank = 16;
  int iterations = 50;      ///< CPD iterations counted in the result.
  int sim_iterations = 2;   ///< iterations actually simulated (extrapolated).
};

struct CpdResult {
  double seconds = 0;            ///< full CPD duration estimate.
  double alltoallv_seconds = 0;  ///< time of the layer alltoallvs alone.
  double compute_seconds = 0;    ///< MTTKRP roofline portion.
};

/// One full CPD iteration as a single 'nprocs'-rank schedule: for each
/// mode, layer alltoallv -> MTTKRP compute -> world-wide Gram allreduce and
/// a small factor broadcast.
simmpi::Schedule cpd_iteration_schedule(const topo::Machine& machine,
                                        const TensorSpec& spec, const Grid3& grid,
                                        const CpdConfig& config);

/// Simulate CPD under a world-rank reordering (the paper's black-box
/// deployment: the application is untouched; only the rank->core mapping
/// changes). The machine must have exactly grid.nprocs() cores.
CpdResult simulate_cpd(const topo::Machine& machine, const TensorSpec& spec,
                       const Order& order, const CpdConfig& config = {});

/// Simulate CPD under an arbitrary rank->core placement (e.g. one computed
/// by a communication-matrix mapper).
CpdResult simulate_cpd_placement(const topo::Machine& machine,
                                 const TensorSpec& spec,
                                 std::vector<std::int64_t> core_of_rank,
                                 const CpdConfig& config = {});

/// Aggregate per-iteration communication matrix (bytes between application
/// ranks) of the CPD proxy — the input a TreeMatch-style mapper would be
/// fed after profiling one iteration.
std::vector<std::vector<double>> cpd_comm_matrix(const TensorSpec& spec,
                                                 const Grid3& grid,
                                                 std::int64_t factor_rank);

/// Pearson correlation coefficient between two samples (the paper's §4.2
/// CPD-vs-alltoallv evidence).
double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace mr::apps::splatt
