// NAS Parallel Benchmarks CG proxy (Fig. 9 substrate).
//
// NPB-CG solves Ax = b with conjugate gradients on a random sparse matrix,
// partitioned over a 2-D power-of-two process grid. It is strongly
// memory-bound, which is exactly why the paper's core-*selection* use case
// shows large effects: picking one core per L3 gives each process a whole
// cache/memory port, while Slurm's default block packing starves them.
//
// The proxy reproduces:
//  * the class geometries (S/A/B/C problem sizes, NPB iteration counts),
//  * the NPB process grid (rows x cols, rows >= cols) and its per-matvec
//    communication pattern (log2(cols) row-reduce exchanges + transpose
//    swap + dot-product allreduces),
//  * a roofline compute model per process: compute time is the max of the
//    FLOP time and the memory time, where a process's sustainable memory
//    bandwidth is the min over its enclosing domains of (domain bandwidth /
//    active processes in the domain).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixradix/simmpi/schedule.hpp"
#include "mixradix/topo/machine.hpp"

namespace mr::apps::cg {

/// NPB problem classes.
struct CgClass {
  char name = 'C';
  std::int64_t n = 0;          ///< matrix dimension.
  std::int64_t nnz = 0;        ///< nonzeros (approximate NPB value).
  int iterations = 0;          ///< outer CG iterations.
  int inner_per_iteration = 25;///< cg sub-iterations per outer iteration.
};

/// S, A, B or C.
CgClass cg_class(char name);

/// The NPB 2-D grid for p processes (p must be a power of two):
/// rows >= cols, rows * cols == p.
struct Grid {
  std::int32_t rows = 1;
  std::int32_t cols = 1;
};
Grid npb_grid(std::int32_t p);

/// Sustainable memory bandwidth (bytes/s) of the process bound to
/// `my_core`, given every active core of the job on this machine: the min
/// over all levels with a memory model of level_bandwidth / active cores in
/// my component at that level.
double process_mem_bandwidth(const topo::Machine& machine,
                             const std::vector<std::int64_t>& active_cores,
                             std::int64_t my_core);

/// Roofline estimate of one process's compute time for one CG inner
/// iteration (matvec + vector updates) at job size p.
double compute_seconds(const CgClass& klass, std::int32_t p, double core_flops,
                       double mem_bandwidth);

/// Communication+compute schedule for `inner_iters` CG inner iterations on
/// p processes with the given per-rank compute times.
simmpi::Schedule cg_schedule(const CgClass& klass, std::int32_t p,
                             const std::vector<double>& compute_time_per_rank,
                             int inner_iters);

struct CgResult {
  double seconds = 0;          ///< full-benchmark wall time estimate.
  double compute_seconds = 0;  ///< roofline compute portion (max over ranks).
  double comm_seconds = 0;     ///< the rest.
};

/// Simulate the full benchmark on `machine` with process r bound to
/// core_list[r]. Simulates `sim_inner_iters` inner iterations in the
/// network simulator and extrapolates to the class's full iteration count.
CgResult simulate_cg(const topo::Machine& machine, const CgClass& klass,
                     const std::vector<std::int64_t>& core_list,
                     int sim_inner_iters = 4);

/// Serial (1-process) estimate, the numerator of the perfect-scaling line.
double serial_seconds(const topo::Machine& machine, const CgClass& klass);

}  // namespace mr::apps::cg
