// The §4.1 experimental protocol:
//   1. reorder MPI_COMM_WORLD under an enumeration order,
//   2. split into equal subcommunicators (consecutive reordered ranks),
//   3. run the collective in the FIRST subcommunicator only,
//   4. run it in ALL subcommunicators simultaneously,
// reporting bandwidth = total collective payload / average per-op duration.
//
// The paper times a 0.5 s steady-state window; the simulator is
// deterministic, so a small number of back-to-back repetitions reaches the
// same steady state without the noise the window exists to average away.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixradix/mr/metrics.hpp"
#include "mixradix/mr/permutation.hpp"
#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/topo/machine.hpp"

namespace mr {
class Engine;  // mixradix/engine/engine.hpp
}  // namespace mr

namespace mr::harness {

struct MicrobenchConfig {
  Order order;
  std::int64_t comm_size = 0;
  simmpi::Collective collective = simmpi::Collective::Alltoall;
  /// The paper's x-axis "size": comm_size * count * sizeof(datatype) bytes.
  std::int64_t total_bytes = 0;
  bool all_comms = false;  ///< false: first subcommunicator only.
  int repetitions = 2;     ///< back-to-back operations per communicator.
  /// Resolve the compiled plan through the engine's plan cache (one
  /// compile — and, in verifying builds, one static analysis — per
  /// distinct (algorithm, p, count, root, repetitions) key across
  /// everything the engine serves). false compiles privately per call;
  /// the results must be byte-identical either way.
  bool use_plan_cache = true;
  /// Forwarded to simmpi::ExecOptions::completion_slack.
  double completion_slack = simmpi::kDefaultCompletionSlack;
  /// Run the pre-overhaul reference engine (bench baseline; bit-identical
  /// timing, see simmpi::ExecOptions::reference).
  bool reference_engine = false;
  /// Explicit engine scratch to reuse (one per thread); nullptr = lease a
  /// workspace from the Engine's pool for the duration of the run.
  simmpi::SimWorkspace* workspace = nullptr;
};

struct MicrobenchResult {
  double mean_seconds_per_op = 0;  ///< averaged over communicators and reps.
  double mean_bandwidth = 0;       ///< total_bytes / seconds_per_op, mean.
  double bw_p10 = 0;               ///< first decile over communicators.
  double bw_p90 = 0;               ///< last decile over communicators.
  std::string algorithm;           ///< which collective algorithm ran.
};

/// Run one protocol instance on `machine` (one process per core), resolving
/// plans and workspaces through `engine` and rolling the run's counters
/// into Engine::Stats.
MicrobenchResult run_microbench(Engine& engine, const topo::Machine& machine,
                                const MicrobenchConfig& config);
/// Backward-compat shim: run_microbench through Engine::shared().
MicrobenchResult run_microbench(const topo::Machine& machine,
                                const MicrobenchConfig& config);

/// Steps 1-2 of the protocol without running anything: the compiled plan
/// and per-communicator core bindings run_microbench would execute
/// (timing-affecting fields of `config` beyond the binding — slack, engine,
/// workspace — are ignored). Shared with mr::tune, whose funnel needs the
/// same jobs twice: once for the static lower bound and once for the
/// simulation of the survivors.
std::vector<simmpi::PlanJob> protocol_jobs(Engine& engine,
                                           const topo::Machine& machine,
                                           const MicrobenchConfig& config);
/// Backward-compat shim: protocol_jobs through Engine::shared().
std::vector<simmpi::PlanJob> protocol_jobs(const topo::Machine& machine,
                                           const MicrobenchConfig& config);

/// One figure series: an order swept over message sizes.
struct SweepSeries {
  OrderCharacter character;  ///< the legend tuple (order, ring cost, pcts).
  std::vector<std::int64_t> sizes;
  std::vector<MicrobenchResult> results;
};

struct SweepConfig {
  std::vector<Order> orders;
  std::vector<std::int64_t> sizes;
  std::int64_t comm_size = 0;
  simmpi::Collective collective = simmpi::Collective::Alltoall;
  bool all_comms = false;
  int repetitions = 2;
  /// Worker threads fanning the (order, size) points out. 0 = use
  /// util::ThreadPool::default_threads() (MIXRADIX_THREADS env override,
  /// else hardware_concurrency); 1 = force the serial in-thread path.
  /// Results are merged in input order, so the output is bit-identical
  /// for every thread count.
  int threads = 0;
  /// Forwarded to MicrobenchConfig::use_plan_cache: h! orders share one
  /// compiled plan per size instead of recompiling per (order, size) point.
  bool use_plan_cache = true;
  /// Forwarded to MicrobenchConfig::completion_slack.
  double completion_slack = simmpi::kDefaultCompletionSlack;
  /// Forwarded to MicrobenchConfig::reference_engine. The sweep's point
  /// workspaces are disabled too (the reference engine allocates fresh).
  bool reference_engine = false;
  /// Opt-in tuner screening (bench `--tune=K`): when > 0, `orders` is
  /// REPLACED by the top-K orders mr::tune finds for this sweep's
  /// (collective, comm_size, sizes, all_comms) workload — the multi-fidelity
  /// funnel screens the full h! space so the sweep only simulates mappings
  /// worth plotting. 0 = off (sweep exactly the given orders).
  int tune_top_k = 0;
  /// Optional point budget for the screening search (0 = unlimited);
  /// forwarded to tune::Budget::max_points.
  std::int64_t tune_budget_points = 0;
};

/// Run the sweep through `engine`: plans from its cache, point workspaces
/// leased from its pool, points fanned over its thread pool. Output is
/// byte-identical for every engine (shared or private) and thread count.
std::vector<SweepSeries> run_sweep(Engine& engine,
                                   const topo::Machine& machine,
                                   const SweepConfig& config);
/// Backward-compat shim: run_sweep through Engine::shared().
std::vector<SweepSeries> run_sweep(const topo::Machine& machine,
                                   const SweepConfig& config);

/// The six x-tick sizes of the paper's figures: 16 KB ... 512 MB.
std::vector<std::int64_t> paper_sizes(std::int64_t max_bytes = 512ll << 20);

// ---- Reporting -------------------------------------------------------------

/// Print a figure as an aligned text table: one row per size, one column
/// pair (bandwidth MB/s) per order; legend lines first.
void print_figure(std::ostream& os, const std::string& title,
                  const std::vector<SweepSeries>& single,
                  const std::vector<SweepSeries>& simultaneous);

/// Machine-readable CSV: columns figure,scenario,order,size,bandwidth_mbs,...
void write_figure_csv(std::ostream& os, const std::string& figure,
                      const std::vector<SweepSeries>& single,
                      const std::vector<SweepSeries>& simultaneous);

}  // namespace mr::harness
