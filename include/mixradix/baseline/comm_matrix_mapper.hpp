// Baseline: communication-matrix-driven process mapping.
//
// The paper's related-work section (§2) contrasts the mixed-radix
// technique — application-oblivious, h! candidate mappings — with tools
// like TreeMatch/TopoMatch that consume a measured communication matrix
// and the machine tree to compute one tailored placement. This module
// implements that baseline: a bottom-up greedy tree matching (the
// TreeMatch family's core idea) so the benches can compare "enumerate
// orders and pick" against "solve for a placement from the matrix".
#pragma once

#include <cstdint>
#include <vector>

#include "mixradix/mr/hierarchy.hpp"

namespace mr::baseline {

/// Symmetric communication volumes between ranks; volume[i][j] in bytes
/// (only i != j entries are read; the matrix is symmetrised internally).
using CommMatrix = std::vector<std::vector<double>>;

/// Bottom-up greedy tree matching: starting at the innermost hierarchy
/// level, repeatedly bundle the `radix` items with the largest mutual
/// volume into one group (seeded by the heaviest communicator), collapse
/// groups into super-nodes with summed volumes, and recurse to the top.
/// Returns core_of_rank: rank r runs on core core_of_rank[r]. Requires
/// h.total() == volume.size().
std::vector<std::int64_t> map_by_comm_matrix(const Hierarchy& h,
                                             const CommMatrix& volume);

/// Mapping quality metric: total volume weighted by the hop cost of each
/// pair's placement (lower is better). Comparable across placements of the
/// same matrix on the same hierarchy.
double weighted_hop_cost(const Hierarchy& h, const CommMatrix& volume,
                         const std::vector<std::int64_t>& core_of_rank);

}  // namespace mr::baseline
