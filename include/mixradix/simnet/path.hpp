// Mapping from machine topology to simulator channels.
//
// Every component of the machine owns three channels:
//  * egress  — traffic leaving the component toward its parent;
//  * ingress — traffic entering from the parent (full duplex links);
//  * memory  — the component's memory-controller bandwidth, shared by all
//    traffic originating or terminating beneath it (only for levels with a
//    mem_bandwidth in the machine model).
//
// A message from core a to core b whose coordinates first differ at level
// fd uses the egress channels of a's components at levels [fd, depth-1],
// the ingress channels of b's (the same crossings mr::hop_cost counts),
// plus the memory channels of BOTH endpoints' domains at every level that
// models one. The memory channels are what make a communicator packed into
// one NUMA domain contend with itself — the effect that lets spread
// mappings win the paper's single-communicator large-message regime.
#pragma once

#include <cstdint>
#include <vector>

#include "mixradix/simnet/flow_sim.hpp"
#include "mixradix/topo/machine.hpp"

namespace mr::simnet {

/// Capacity vector for FlowSim: channel 3*component_id(level, comp) is that
/// component's egress, +1 its ingress (both at the level's link bandwidth),
/// +2 its memory channel (the level's mem_bandwidth; placeholder capacity
/// when the level models none — such channels never appear in paths).
std::vector<double> channel_capacities(const topo::Machine& machine);

ChannelId egress_channel(const topo::Machine& machine, int level,
                         std::int64_t component_in_level);
ChannelId ingress_channel(const topo::Machine& machine, int level,
                          std::int64_t component_in_level);
ChannelId memory_channel(const topo::Machine& machine, int level,
                         std::int64_t component_in_level);

/// Channels crossed by a transfer from core_a to core_b. Empty for a
/// self-message (modelled latency-only). The list is what FlowSim expects.
std::vector<ChannelId> flow_channels(const topo::Machine& machine,
                                     std::int64_t core_a, std::int64_t core_b);

}  // namespace mr::simnet
