// Per-machine route interning for the timed executor hot path.
//
// Every message a collective schedule posts is a (src_core, dst_core)
// transfer, and every figure sweep replays the same few thousand core
// pairs hundreds of thousands of times. Deriving the channel set with
// flow_channels() per message means a heap-allocated vector plus a
// sort/unique per message; the route table does that walk ONCE per
// distinct pair and hands back an interned ChanSet (already sorted,
// duplicate-free, in range — FlowSim's fast add_flow overload) together
// with the pair's path latency.
//
// A RouteTable is bound to one machine and is deliberately not
// thread-safe: each SimWorkspace (one per sweep thread) owns its own
// table, so the hot path takes no locks and route ids stay dense.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mixradix/simnet/flow_sim.hpp"
#include "mixradix/topo/machine.hpp"

namespace mr::simnet {

class RouteTable {
 public:
  /// Dense id of an interned (src_core, dst_core) route.
  using RouteId = std::int32_t;

  struct Stats {
    std::int64_t hits = 0;    ///< route() calls served from the table.
    std::int64_t misses = 0;  ///< route() calls that derived a new route.
  };

  /// An unbound table; bind() before use.
  RouteTable() = default;

  /// Bind to `machine`, dropping all interned routes. The reference must
  /// outlive the table (a SimWorkspace rebinds whenever the machine
  /// changes). Counters reset.
  void bind(const topo::Machine& machine);

  /// Drop interned routes but keep the binding and the counters.
  void clear();

  /// Re-point at an equivalent machine — one whose topology and
  /// performance parameters match the bound machine's — WITHOUT dropping
  /// interned routes. Used by SimWorkspace when a fresh Machine instance
  /// has an identical fingerprint (routes depend only on the parameters).
  void rebind_equivalent(const topo::Machine& machine) noexcept {
    machine_ = &machine;
  }

  /// Intern (or look up) the route from `src` to `dst`; cores must be in
  /// range for the bound machine.
  RouteId route(std::int64_t src, std::int64_t dst);

  const ChanSet& channels(RouteId id) const {
    return channels_[static_cast<std::size_t>(id)];
  }
  double latency(RouteId id) const {
    return latency_[static_cast<std::size_t>(id)];
  }

  std::size_t size() const noexcept { return channels_.size(); }
  const Stats& stats() const noexcept { return stats_; }

 private:
  const topo::Machine* machine_ = nullptr;
  std::unordered_map<std::uint64_t, RouteId> index_;  ///< (src << 32 | dst).
  std::vector<ChanSet> channels_;
  std::vector<double> latency_;
  Stats stats_;
};

}  // namespace mr::simnet
