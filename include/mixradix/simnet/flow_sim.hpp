// Flow-level network simulation with max-min fair bandwidth sharing.
//
// Every hierarchy component owns channels (egress/ingress/memory); a flow
// occupies one channel set for its whole life and receives a rate
// determined by progressive filling (water-filling): all flows grow
// equally until some channel saturates, flows through that channel freeze
// at the fair share, and the rest keep growing. This is the standard fluid
// approximation of congestion-controlled transports and is what turns
// "32 communicators spread over every node" into the NIC-sharing collapse
// of the paper's Fig. 3.
//
// The simulation is event-driven: rates change only when a flow starts or
// finishes, so between events every flow drains linearly. The
// implementation is data-oriented — active flows live in dense parallel
// arrays with inline channel sets — because simulating one collective can
// mean hundreds of thousands of rate updates.
//
// Time advances on a virtual clock: a flow stores the absolute deadline at
// which it completes under its current rate, recomputed only when that rate
// actually changes, so advance_to() never touches per-flow state and the
// next completion comes from a lazy min-heap over deadlines instead of an
// O(active-flows) scan per event. A reference mode (incremental = false)
// keeps the scan for benchmarking; both modes evaluate the exact same
// floating-point expressions and are bit-identical.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <optional>
#include <vector>

namespace mr::simnet {

using ChannelId = std::int32_t;

/// Most channels a single flow may cross (2 link sides + 2 memory sides
/// per hierarchy level, hierarchies up to 6 levels deep).
inline constexpr int kMaxChannelsPerFlow = 24;

/// An inline, sorted, duplicate-free channel set — the interned form of a
/// flow's path (see simnet::RouteTable). Producing one once per (src, dst)
/// core pair is what lets add_flow skip the per-message vector allocation,
/// sort and unique of the general entry point.
struct ChanSet {
  std::array<ChannelId, kMaxChannelsPerFlow> ids;
  std::int32_t count = 0;
};

/// A completed flow, reported by advance_and_pop().
struct Completion {
  std::int64_t flow = 0;   ///< id returned by add_flow.
  std::int64_t user = 0;   ///< caller-supplied cookie.
  double time = 0;         ///< completion time (seconds).
};

class FlowSim {
 public:
  /// Compatibility alias for the namespace-scope constant.
  static constexpr int kMaxChannelsPerFlow = simnet::kMaxChannelsPerFlow;

  /// Per-instance event counters (formerly file-scope globals; instances
  /// must be independent so simulations can run on concurrent threads).
  struct Stats {
    std::int64_t deferred_allocations = 0;  ///< defer fast-path successes.
    std::int64_t deferred_rejections = 0;   ///< fast path fell through to exact.
    std::int64_t full_recomputes = 0;       ///< exact progressive-filling passes.
    std::int64_t pop_batches = 0;           ///< advance_and_pop() batches.
    std::int64_t peak_active_flows = 0;     ///< high-water mark of active flows.
  };

  /// An empty simulator; reset() before use. Exists so a SimWorkspace can
  /// hold one instance whose buffers persist across runs.
  FlowSim() = default;

  /// `capacities[c]` is the bytes/s capacity of channel c.
  /// `completion_slack` trades exactness for speed: a flow whose residual
  /// transfer time is within `slack * elapsed-horizon` of the earliest
  /// completion finishes in the same event batch, slightly early. 0 (the
  /// default) is exact; ~0.005 merges the long cascades of nearly-equal
  /// completions that collective traffic produces, with a per-hop relative
  /// timing error bounded by the slack.
  explicit FlowSim(std::vector<double> capacities, double completion_slack = 0.0);

  /// Reinitialise to a fresh simulation over `capacities`, reusing every
  /// internal buffer (no per-run allocation churn when the channel count is
  /// unchanged). `incremental = false` selects the reference completion
  /// tracker: an O(active-flows) scan per event instead of the lazy
  /// deadline heap, with bit-identical output (bench baseline).
  void reset(const std::vector<double>& capacities, double completion_slack = 0.0,
             bool incremental = true);

  double now() const noexcept { return now_; }

  /// Number of flows currently in the system.
  std::size_t active_flows() const noexcept { return remaining_.size(); }

  /// Start a flow of `bytes` over `channels` at the current time.
  /// `channels` may be empty (infinite-capacity path) and may repeat ids
  /// (deduplicated). Zero-byte flows complete at the current instant.
  std::int64_t add_flow(std::vector<ChannelId> channels, double bytes,
                        std::int64_t user);

  /// Interned fast path: `channels` must already be sorted, duplicate-free
  /// and in range (as produced by RouteTable); skips the per-call
  /// allocation, sort and validation of the vector overload. Constrained
  /// template rather than a plain ChanSet parameter so braced channel
  /// lists ({0, 1}) keep resolving to the vector overload (a braced list
  /// never deduces a template parameter).
  template <typename Set>
    requires std::same_as<Set, ChanSet>
  std::int64_t add_flow(const Set& channels, double bytes, std::int64_t user) {
    return add_interned(channels, bytes, user);
  }

  /// Time at which the next flow will complete under current rates, or
  /// std::nullopt when no flow is active.
  std::optional<double> next_completion_time();

  /// Advance the clock to exactly `t` (all flows drain linearly; the drain
  /// is implicit in each flow's deadline, so this is O(1)).
  /// `t` must be >= now() and <= next_completion_time() when flows exist.
  void advance_to(double t);

  /// Advance to the next completion time and pop EVERY flow completing at
  /// that instant (simultaneous completions batch into one rate update).
  std::vector<Completion> advance_and_pop();

  /// Current max-min fair rate of a flow (testing / introspection).
  /// Completed flows report their final rate.
  double flow_rate(std::int64_t flow);

  /// Event counters since construction (or the last reset()).
  const Stats& stats() const noexcept { return stats_; }

 private:
  std::int64_t add_interned(const ChanSet& channels, double bytes,
                            std::int64_t user);
  void recompute_rates();
  bool try_defer_allocation(std::size_t index);
  bool steal_allocation(std::size_t index, double fair);
  void remove_active(std::size_t index);

  /// Bytes left in flow `index` at the current clock under its current
  /// rate (exact while the rate is unchanged: the deadline is fixed).
  double current_remaining(std::size_t index) const;
  /// Install a new rate for flow `index`: sync its remaining bytes to the
  /// current clock, project the new absolute deadline, index it.
  void assign_rate(std::size_t index, double rate);
  void heap_push(std::size_t index);

  /// Pop batches between forced exact recomputations in deferred mode.
  static constexpr int kMaxDeferredBatches = 128;

  /// Below this many active flows the incremental tracker uses the
  /// reference scan directly (same doubles, no heap maintenance): with few
  /// flows the O(n) scan is cheaper than keeping the lazy index fresh
  /// under rate churn. The heap engages for the many-flow regime (e.g. 32
  /// simultaneous communicators, hundreds of active flows).
  static constexpr std::size_t kScanFlows = 64;

  std::vector<double> capacities_;

  // Dense parallel arrays over ACTIVE flows (swap-removed on completion).
  // `remaining_` holds the bytes left as of the flow's last rate change;
  // `deadline_` the absolute completion time under the current rate
  // (+inf while the flow awaits its first allocation).
  std::vector<double> remaining_;
  std::vector<double> rate_;
  std::vector<double> deadline_;
  std::vector<std::int64_t> user_;
  std::vector<std::int64_t> ext_id_;
  std::vector<ChanSet> chans_;

  // External id -> (active index + 1), 0 when gone; plus last known rate.
  std::vector<std::int64_t> ext_index_;
  std::vector<double> ext_rate_;

  double now_ = 0;
  double completion_slack_ = 0;
  bool incremental_ = true;
  bool rates_dirty_ = true;
  int batches_since_full_ = 0;
  Stats stats_;

  // Lazy completion index: every deadline change pushes a (deadline, ext)
  // entry; stale entries (flow gone, or deadline since changed) are
  // discarded on pop. Unused in reference mode and below kScanFlows;
  // heap_live_ records whether the heap currently covers every active
  // flow (pushes are suppressed in the scan regime, so the first push
  // back in the many-flow regime rebuilds it wholesale).
  struct HeapEntry {
    double deadline;
    std::int64_t ext;
  };
  std::vector<HeapEntry> heap_;
  bool heap_live_ = false;
  std::vector<std::size_t> batch_;  ///< completion-batch scratch.

  // Incremental per-channel bookkeeping for deferred allocation.
  std::vector<double> used_;
  std::vector<std::int32_t> nflows_;
  std::vector<double> freed_;
  /// Lazily-compacted per-channel lists of flow EXTERNAL ids (stable across
  /// the swap-removal of active slots); dead entries are skipped/purged.
  std::vector<std::vector<std::int64_t>> by_channel_;

  // Scratch (persistent capacity, reset per recompute).
  std::vector<double> residual_;
  std::vector<std::int32_t> load_;
  std::vector<double> newrate_;
  std::vector<ChannelId> touched_;
  std::vector<std::vector<std::int32_t>> flows_on_;  ///< active indices.
  std::vector<ChannelId> touched_scan_;
};

}  // namespace mr::simnet
