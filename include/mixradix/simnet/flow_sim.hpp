// Flow-level network simulation with max-min fair bandwidth sharing.
//
// Every hierarchy component owns channels (egress/ingress/memory); a flow
// occupies one channel set for its whole life and receives a rate
// determined by progressive filling (water-filling): all flows grow
// equally until some channel saturates, flows through that channel freeze
// at the fair share, and the rest keep growing. This is the standard fluid
// approximation of congestion-controlled transports and is what turns
// "32 communicators spread over every node" into the NIC-sharing collapse
// of the paper's Fig. 3.
//
// The simulation is event-driven: rates change only when a flow starts or
// finishes, so between events every flow drains linearly. The
// implementation is data-oriented — active flows live in dense parallel
// arrays with inline channel sets — because simulating one collective can
// mean hundreds of thousands of rate updates.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace mr::simnet {

using ChannelId = std::int32_t;

/// A completed flow, reported by advance_and_pop().
struct Completion {
  std::int64_t flow = 0;   ///< id returned by add_flow.
  std::int64_t user = 0;   ///< caller-supplied cookie.
  double time = 0;         ///< completion time (seconds).
};

class FlowSim {
 public:
  /// Most channels a single flow may cross (2 link sides + 2 memory sides
  /// per hierarchy level, hierarchies up to 6 levels deep).
  static constexpr int kMaxChannelsPerFlow = 24;

  /// Per-instance event counters (formerly file-scope globals; instances
  /// must be independent so simulations can run on concurrent threads).
  struct Stats {
    std::int64_t deferred_allocations = 0;  ///< defer fast-path successes.
    std::int64_t deferred_rejections = 0;   ///< fast path fell through to exact.
    std::int64_t full_recomputes = 0;       ///< exact progressive-filling passes.
    std::int64_t pop_batches = 0;           ///< advance_and_pop() batches.
  };

  /// `capacities[c]` is the bytes/s capacity of channel c.
  /// `completion_slack` trades exactness for speed: a flow whose residual
  /// transfer time is within `slack * elapsed-horizon` of the earliest
  /// completion finishes in the same event batch, slightly early. 0 (the
  /// default) is exact; ~0.005 merges the long cascades of nearly-equal
  /// completions that collective traffic produces, with a per-hop relative
  /// timing error bounded by the slack.
  explicit FlowSim(std::vector<double> capacities, double completion_slack = 0.0);

  double now() const noexcept { return now_; }

  /// Number of flows currently in the system.
  std::size_t active_flows() const noexcept { return remaining_.size(); }

  /// Start a flow of `bytes` over `channels` at the current time.
  /// `channels` may be empty (infinite-capacity path) and may repeat ids
  /// (deduplicated). Zero-byte flows complete at the current instant.
  std::int64_t add_flow(std::vector<ChannelId> channels, double bytes,
                        std::int64_t user);

  /// Time at which the next flow will complete under current rates, or
  /// std::nullopt when no flow is active.
  std::optional<double> next_completion_time();

  /// Advance the clock to exactly `t` (draining all flows linearly).
  /// `t` must be >= now() and <= next_completion_time() when flows exist.
  void advance_to(double t);

  /// Advance to the next completion time and pop EVERY flow completing at
  /// that instant (simultaneous completions batch into one rate update).
  std::vector<Completion> advance_and_pop();

  /// Current max-min fair rate of a flow (testing / introspection).
  /// Completed flows report their final rate.
  double flow_rate(std::int64_t flow);

  /// Event counters since construction.
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct ChanSet {
    std::array<ChannelId, kMaxChannelsPerFlow> ids;
    std::int32_t count = 0;
  };

  void recompute_rates();
  bool try_defer_allocation(std::size_t index);
  bool steal_allocation(std::size_t index, double fair);
  void drain(double dt);
  void remove_active(std::size_t index);

  /// Pop batches between forced exact recomputations in deferred mode.
  static constexpr int kMaxDeferredBatches = 128;

  std::vector<double> capacities_;

  // Dense parallel arrays over ACTIVE flows (swap-removed on completion).
  std::vector<double> remaining_;
  std::vector<double> rate_;
  std::vector<std::int64_t> user_;
  std::vector<std::int64_t> ext_id_;
  std::vector<ChanSet> chans_;

  // External id -> (active index + 1), 0 when gone; plus last known rate.
  std::vector<std::int64_t> ext_index_;
  std::vector<double> ext_rate_;

  double now_ = 0;
  double completion_slack_ = 0;
  bool rates_dirty_ = true;
  int batches_since_full_ = 0;
  Stats stats_;

  // Incremental per-channel bookkeeping for deferred allocation.
  std::vector<double> used_;
  std::vector<std::int32_t> nflows_;
  std::vector<double> freed_;
  /// Lazily-compacted per-channel lists of flow EXTERNAL ids (stable across
  /// the swap-removal of active slots); dead entries are skipped/purged.
  std::vector<std::vector<std::int64_t>> by_channel_;

  // Scratch (persistent capacity, reset per recompute).
  std::vector<double> residual_;
  std::vector<std::int32_t> load_;
  std::vector<ChannelId> touched_;
  std::vector<std::vector<std::int32_t>> flows_on_;  ///< active indices.
  std::vector<ChannelId> touched_scan_;
};

}  // namespace mr::simnet
