// mr::Engine: a scoped execution context replacing the process-global
// singletons.
//
// Every evaluation layer used to reach for process-wide state — the
// compiled-plan cache (PlanCache::shared()), the worker pool
// (ThreadPool::shared()) and function-scoped thread_local simulation
// workspaces — which made concurrent independent queries share caches,
// leaked LRU capacity settings across queries, and pinned workspace
// memory to pool threads for the life of the process. An Engine owns all
// three per query (or per service tenant):
//
//   Engine
//    ├── simmpi::PlanCache        compiled plans, per-engine LRU capacity
//    ├── util::ThreadPool handle  the process pool by default, or a
//    │                            dedicated pool (EngineConfig)
//    ├── SimWorkspace pool        checkout/return leases; reclaimed when
//    │                            the Engine dies, never shared across
//    │                            engines (no cross-query fingerprint
//    │                            state)
//    └── Stats                    plan-cache, route-table, flow-sim,
//                                 classify and tune counters in one place
//
// Entry points that used a singleton (harness::run_microbench/run_sweep,
// tune::tune, classify_orders/characterize_orders, simmpi::World) now take
// an Engine&; their original signatures remain as backward-compat shims
// routing through Engine::shared(), whose plan cache and pool ARE the
// process-wide singletons — existing callers observe byte-identical
// behaviour and output. Two engines never share plan-cache or workspace
// state even when their work interleaves on the same pool threads; only
// the (stateless-per-task) worker threads are shared.
//
// Thread safety: plan_cache(), thread_pool(), workspace() and the record_*
// methods are safe to call concurrently; an Engine must outlive every
// lease checked out of it and every call it is passed to.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mixradix/simmpi/plan_cache.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/util/thread_pool.hpp"
#include "mixradix/verify/binding.hpp"

namespace mr {

struct ClassifyStats;  // mixradix/mr/equivalence.hpp

/// Construction-time knobs of a private Engine. Engine::shared() ignores
/// them (it wraps the process-wide singletons).
struct EngineConfig {
  /// Plan-cache LRU capacity: 0 = unbounded, N = keep at most N compiled
  /// plans (see PlanCache). Scoped to this engine — never leaks into other
  /// engines or the shared cache.
  std::size_t plan_cache_capacity = 0;
  /// 0 = fan work out over the process-wide pool (workers are stateless
  /// per task, so engines stay isolated even on shared threads); N =
  /// spawn a dedicated N-thread pool owned — and joined — by this engine.
  /// The actual thread count may be reduced by the cooperative budget
  /// (Engine::set_dedicated_thread_budget); dedicated_threads_granted()
  /// reports what this engine received.
  unsigned dedicated_threads = 0;
  /// Static-bound-structure LRU capacity (verify::binding::BoundCache):
  /// 0 = unbounded, N = keep at most N payload-invariant structures.
  std::size_t bound_cache_capacity =
      verify::binding::BoundCache::kDefaultCapacity;
};

class Engine {
 public:
  /// A private engine: fresh plan cache, empty workspace pool, zeroed
  /// stats. Byte-identical results to Engine::shared(), isolated state.
  Engine() : Engine(EngineConfig{}) {}
  explicit Engine(const EngineConfig& config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// This engine's compiled-plan cache. For Engine::shared() this is
  /// PlanCache::shared() itself (the backward-compat story).
  simmpi::PlanCache& plan_cache() noexcept { return *cache_; }

  /// This engine's static-bound-structure cache (tune stage 2's
  /// analyze_jobs memoization across payload sizes). Always engine-owned —
  /// Engine::shared() gets its own process-lifetime instance.
  verify::binding::BoundCache& bound_cache() noexcept { return *bound_cache_; }

  /// The pool this engine fans work over: its dedicated pool when
  /// EngineConfig::dedicated_threads > 0, else the process-wide pool
  /// (created lazily — serial callers never spawn workers).
  util::ThreadPool& thread_pool() {
    return pool_ != nullptr ? *pool_ : util::ThreadPool::shared();
  }

  const EngineConfig& config() const noexcept { return config_; }

  /// RAII checkout of one SimWorkspace from the engine's pool: the
  /// workspace returns to the pool when the lease dies, and the pool's
  /// memory dies with the engine. Replaces the old function-scoped
  /// `static thread_local SimWorkspace` (which pinned fingerprint state
  /// and memory to pool threads for the life of the process).
  class WorkspaceLease {
   public:
    /// An empty lease (get() == nullptr); assign from Engine::workspace().
    WorkspaceLease() = default;
    WorkspaceLease(WorkspaceLease&& other) noexcept
        : engine_(other.engine_), workspace_(std::move(other.workspace_)) {
      other.engine_ = nullptr;
    }
    WorkspaceLease& operator=(WorkspaceLease&& other) noexcept {
      if (this != &other) {
        release();
        engine_ = other.engine_;
        workspace_ = std::move(other.workspace_);
        other.engine_ = nullptr;
      }
      return *this;
    }
    WorkspaceLease(const WorkspaceLease&) = delete;
    WorkspaceLease& operator=(const WorkspaceLease&) = delete;
    ~WorkspaceLease() { release(); }

    simmpi::SimWorkspace& operator*() noexcept { return *workspace_; }
    simmpi::SimWorkspace* operator->() noexcept { return workspace_.get(); }
    simmpi::SimWorkspace* get() noexcept { return workspace_.get(); }

   private:
    friend class Engine;
    WorkspaceLease(Engine* engine,
                   std::unique_ptr<simmpi::SimWorkspace> workspace)
        : engine_(engine), workspace_(std::move(workspace)) {}
    void release();

    Engine* engine_ = nullptr;
    std::unique_ptr<simmpi::SimWorkspace> workspace_;
  };

  /// Check a workspace out of the pool (most recently returned first, so
  /// interned routes stay warm), creating one on first use. One lease per
  /// thread — a SimWorkspace is not thread-safe.
  WorkspaceLease workspace();

  /// Aggregated per-engine counters: a plan-cache snapshot plus the
  /// executor/flow-sim/route-table, classification and tune totals
  /// recorded against this engine. Queries served by different engines
  /// have fully disjoint stats.
  struct Stats {
    simmpi::PlanCache::Stats plan_cache;
    verify::binding::BoundCache::Stats bound_cache;

    // Timed-executor runs recorded via record_run (sweeps, tune stage 3).
    std::int64_t sim_runs = 0;
    std::int64_t events_processed = 0;   ///< engine events popped.
    std::int64_t flow_completions = 0;   ///< network flow completions.
    std::int64_t route_cache_hits = 0;   ///< route lookups served interned.
    std::int64_t route_cache_misses = 0; ///< route lookups that derived.

    // classify_orders runs recorded via record_classify.
    std::int64_t classify_runs = 0;
    std::int64_t orders_classified = 0;
    std::int64_t classes_found = 0;
    std::int64_t signatures_hashed = 0;
    std::int64_t collision_checks = 0;
    std::int64_t hash_collisions = 0;

    // tune::tune runs recorded via record_tune.
    std::int64_t tune_runs = 0;
    std::int64_t tune_candidates_simulated = 0;
    std::int64_t tune_sim_points = 0;

    // Workspace-pool accounting.
    std::int64_t workspace_checkouts = 0;
    std::int64_t workspaces_created = 0;
    std::int64_t workspaces_idle = 0;  ///< pooled and currently unleased.
  };
  Stats stats() const;

  /// Zero the recorded counters (plan-cache stats are the cache's own and
  /// are NOT reset; use plan_cache().clear() for that).
  void reset_stats();

  /// Roll one timed-executor result's counters into the engine totals.
  void record_run(const simmpi::TimedResult& result);
  /// Roll one classification run's counters into the engine totals.
  void record_classify(const ClassifyStats& classify);
  /// Roll one tune run's funnel totals into the engine totals.
  void record_tune(std::int64_t candidates_simulated,
                   std::int64_t sim_points);

  /// The process-wide engine every backward-compat shim routes through:
  /// its plan cache is PlanCache::shared(), its pool is
  /// ThreadPool::shared(), and its workspace pool lives for the process.
  static Engine& shared();

  // ---- Cooperative dedicated-pool budget ----------------------------------
  //
  // N tenant engines each asking for `dedicated_threads` workers would
  // oversubscribe the host N-fold. The budget is a process-wide cap on the
  // SUM of dedicated threads alive at once: an engine constructed while the
  // budget is tight is granted min(requested, max(1, budget - in_use)) —
  // never zero, so it always makes progress — and returns its grant when it
  // is destroyed. 0 (the default) disables the cap entirely.

  /// Set the process-wide dedicated-thread budget; 0 = unlimited. Applies
  /// to engines constructed AFTER the call (live grants are not reclaimed).
  static void set_dedicated_thread_budget(unsigned budget);
  static unsigned dedicated_thread_budget();
  /// Dedicated threads currently granted across all live engines.
  static unsigned dedicated_threads_in_use();
  /// Threads this engine's dedicated pool actually got (0 = shared pool).
  unsigned dedicated_threads_granted() const noexcept { return granted_; }

 private:
  struct SharedTag {};
  explicit Engine(SharedTag);
  void return_workspace(std::unique_ptr<simmpi::SimWorkspace> workspace);

  EngineConfig config_;
  std::unique_ptr<simmpi::PlanCache> owned_cache_;
  simmpi::PlanCache* cache_ = nullptr;
  std::unique_ptr<verify::binding::BoundCache> bound_cache_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;  ///< null = use the process pool.
  unsigned granted_ = 0;  ///< dedicated threads drawn from the budget.

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<simmpi::SimWorkspace>> idle_;  ///< LIFO.
  Stats counters_;  ///< guarded by mutex_; plan_cache field unused here.
};

}  // namespace mr
