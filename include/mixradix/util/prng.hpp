// Deterministic pseudo-random number generation.
//
// Benchmarks and synthetic workload generators must be reproducible across
// runs and platforms, so we ship our own small PRNGs (SplitMix64 for seeding,
// xoshiro256** for streams) instead of relying on the implementation-defined
// distributions of <random>.
#pragma once

#include <cstdint>

namespace mr::util {

/// SplitMix64: used to expand a single 64-bit seed into independent seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for workload synthesis.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mr::util
