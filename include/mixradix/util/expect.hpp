// Lightweight precondition / invariant checking for the mixradix library.
//
// Library entry points validate their inputs with MR_EXPECT and throw
// mr::invalid_argument on violation, so that misuse is reported with a
// message instead of undefined behaviour. Internal invariants use
// MR_ASSERT_INTERNAL, which aborts: an internal violation is a library bug,
// not a user error.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mr {

/// Thrown when a caller violates a documented precondition.
class invalid_argument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] inline void throw_expect_failure(const char* cond, const char* file, int line,
                                              const std::string& msg) {
  throw invalid_argument(std::string(file) + ":" + std::to_string(line) +
                         ": precondition failed (" + cond + "): " + msg);
}

[[noreturn]] inline void abort_internal(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "%s:%d: internal invariant violated: %s\n", file, line, cond);
  std::abort();
}

}  // namespace detail
}  // namespace mr

#define MR_EXPECT(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) ::mr::detail::throw_expect_failure(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define MR_ASSERT_INTERNAL(cond)                                            \
  do {                                                                      \
    if (!(cond)) ::mr::detail::abort_internal(#cond, __FILE__, __LINE__);   \
  } while (0)
