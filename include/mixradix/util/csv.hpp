// Minimal CSV emitter used by the benchmark harness so every figure's data
// can be re-plotted outside the repo. Values are quoted only when needed.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mr::util {

/// Streams rows of a CSV table. The header is written on construction.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  /// Write one row; must have the same arity as the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: accepts any mix of strings / numerics.
  template <typename... Ts>
  void row_of(const Ts&... fields) {
    row({to_field(fields)...});
  }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(double v);
  static std::string to_field(int v) { return std::to_string(v); }
  static std::string to_field(long v) { return std::to_string(v); }
  static std::string to_field(unsigned long v) { return std::to_string(v); }
  static std::string to_field(long long v) { return std::to_string(v); }
  static std::string to_field(unsigned long long v) { return std::to_string(v); }

  void write_line(const std::vector<std::string>& fields);

  std::ostream& os_;
  std::size_t arity_;
};

/// Quote a field per RFC 4180 if it contains separators/quotes/newlines.
std::string csv_escape(const std::string& field);

}  // namespace mr::util
