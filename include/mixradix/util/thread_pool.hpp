// A small work-stealing thread pool shared by the evaluation layer.
//
// The paper's workflow — characterize all h! orders, then simulate every
// (order, message size) point of a figure sweep — is embarrassingly
// parallel: each point owns its own simulator instance and touches no
// shared mutable state. The pool fans those points out across cores;
// callers merge results back in input order, so parallel output is
// bit-identical to the serial path.
//
// Design: one FIFO deque per worker. submit() distributes round-robin;
// each worker drains its own deque front-to-back (submission order is
// preserved on a single-worker pool) and steals from the BACK of other
// workers' deques when its own runs dry, so thieves and owners contend on
// opposite ends. parallel_for() does not enqueue one task per index:
// it submits a handful of driver tasks that pull indices from a shared
// atomic cursor (self-balancing, no per-index allocation) and the calling
// thread participates, so a pool is never a bottleneck for its own caller
// and `max_workers == 1` degenerates to an inline serial loop.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mr::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task. The future becomes ready when the task returns;
  /// an exception escaping the task is captured into the future.
  std::future<void> submit(std::function<void()> task);

  /// Run body(0) ... body(n-1), blocking until all complete. At most
  /// `max_workers` threads run concurrently (0 = the whole pool); the
  /// calling thread always participates, and with one effective worker
  /// the loop runs inline on the caller. The first exception thrown by
  /// `body` cancels the remaining indices and is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    unsigned max_workers = 0);

  /// parallel_for variant whose body also receives a stable slot id in
  /// [0, effective workers): every participating thread drives its indices
  /// under one slot (the caller is always slot 0), so a caller can hand
  /// each slot a private scratch buffer without locks or thread_locals —
  /// scratch lifetime follows the call, not the pool threads. Slot
  /// assignment only selects scratch; which indices run, and the
  /// serial-fallback contract, match parallel_for exactly.
  void parallel_for_slots(
      std::size_t n, const std::function<void(unsigned, std::size_t)>& body,
      unsigned max_workers = 0);

  /// The process-wide pool, lazily created with default_threads() workers.
  static ThreadPool& shared();

  /// Thread count used when the caller does not pin one: the
  /// MIXRADIX_THREADS environment variable when set to a positive integer,
  /// else std::thread::hardware_concurrency() (minimum 1). Re-read on
  /// every call so tests and ctest wrappers can override it.
  static unsigned default_threads();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;  ///< front = oldest.
  };

  void worker_loop(std::size_t self);
  bool pop_own(std::size_t self, std::function<void()>& task);
  bool steal(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::atomic<std::size_t> queued_{0};  ///< tasks sitting in some deque.
  std::atomic<std::size_t> next_queue_{0};
  bool stop_ = false;  ///< guarded by wake_mutex_.
};

}  // namespace mr::util
