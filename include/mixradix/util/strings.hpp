// Small string utilities shared across the library: splitting, joining,
// trimming, and human-readable byte formatting for reports.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mr::util {

/// Split `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Join the elements of `parts` with `sep` between them.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Join integers with `sep`, e.g. join_ints({0,1,2}, "-") == "0-1-2".
std::string join_ints(const std::vector<int>& values, std::string_view sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Parse a non-negative integer; throws mr::invalid_argument on junk.
int parse_int(std::string_view s);

/// "16 KB", "3.8 MB", "512 MB" style formatting (powers of 1024).
std::string format_bytes(std::uint64_t bytes);

/// Fixed-point formatting with `digits` decimals ("46.7").
std::string format_fixed(double value, int digits);

}  // namespace mr::util
