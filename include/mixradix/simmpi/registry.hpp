// The algorithm registry: every collective algorithm the library can
// compile to a Schedule, as one table of (name, support predicate,
// generator fn). This is the single source of truth three layers share:
//
//  * the selector (make_collective) resolves the name its selection rule
//    picked into a generator — no string-compare dispatch chain;
//  * plan compilation (mixradix/simmpi/plan.hpp) turns a registry name
//    into an immutable Plan, memoized by the PlanCache;
//  * the verify generator matrix builds its test cross product from this
//    table and only adds the repeat/concat/merge composition shapes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mixradix/simmpi/schedule.hpp"

namespace mr::simmpi {

struct AlgorithmInfo {
  const char* name;
  /// Rooted collectives consume the root argument; the rest ignore it.
  bool rooted;
  /// Which communicator sizes the generator supports (e.g. recursive
  /// doubling allgather needs a power of two).
  bool (*supported)(std::int32_t p);
  /// Pure generator: rank ids are communicator ranks, `count` follows the
  /// collective's own convention (doubles).
  Schedule (*make)(std::int32_t p, std::int64_t count, std::int32_t root);
};

/// Every registered algorithm, in a stable order.
const std::vector<AlgorithmInfo>& algorithm_registry();

/// Registry entry for `name`, nullptr when unknown.
const AlgorithmInfo* find_algorithm(std::string_view name);

/// Instantiate algorithm `name` for `p` ranks. Throws mr::invalid_argument
/// for unknown names, unsupported (name, p) combinations, non-positive
/// counts, and out-of-range roots.
Schedule make_algorithm(const std::string& name, std::int32_t p,
                        std::int64_t count, std::int32_t root = 0);

}  // namespace mr::simmpi
