// Collective-operation schedule generators.
//
// Each generator compiles one textbook algorithm — the algorithms real MPI
// implementations (Open MPI "tuned", MPICH) select from — into a Schedule.
// `count` is in doubles (8 bytes each). Arena layouts are documented per
// generator; DataExecutor tests pin down the exact semantics.
//
// All generators are pure functions of (p, count): rank ids are
// communicator ranks, and the mapping onto machine cores is supplied later
// to the TimedExecutor. This is what makes the paper's experiment shape
// possible: the same schedule, replayed under different rank->core
// mappings, exposes the mapping sensitivity of each algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixradix/simmpi/schedule.hpp"

namespace mr::simmpi {

// ---- Alltoall ------------------------------------------------------------
// Arena: in [0, p*c), out [p*c, 2*p*c), temp/pack space beyond (Bruck).
// Semantics: out block j of rank i == in block i of rank j.

/// Pairwise exchange: p-1 rounds; round r sends to (rank+r)%p and receives
/// from (rank-r)%p (XOR partners when p is a power of two). The large-
/// message workhorse.
Schedule alltoall_pairwise(std::int32_t p, std::int64_t count);

/// Bruck: ceil(log2 p) rounds of packed blocks; latency-optimal for small
/// messages at the price of log(p) extra copies of the data.
Schedule alltoall_bruck(std::int32_t p, std::int64_t count);

/// Basic linear: every send/recv posted at once (single round).
Schedule alltoall_linear(std::int32_t p, std::int64_t count);

// ---- Allgather -----------------------------------------------------------
// Arena: in [0, c), out [c, c + p*c), Bruck temp beyond.
// Semantics: out block j == in of rank j.

/// Ring: p-1 rounds, neighbour traffic only — the rank-order-sensitive one.
Schedule allgather_ring(std::int32_t p, std::int64_t count);

/// Recursive doubling (p must be a power of two): log2 p rounds of doubling
/// block ranges with XOR partners.
Schedule allgather_recursive_doubling(std::int32_t p, std::int64_t count);

/// Bruck allgather: works for any p in ceil(log2 p) rounds.
Schedule allgather_bruck(std::int32_t p, std::int64_t count);

// ---- Allreduce -----------------------------------------------------------
// Arena: in [0, c), out [c, 2c), temp [2c, 3c). Semantics: out == elementwise
// sum over ranks of in.

/// Recursive doubling with the standard non-power-of-two pre/post phase.
Schedule allreduce_recursive_doubling(std::int32_t p, std::int64_t count);

/// Ring reduce-scatter + ring allgather (Rabenseifner for rings):
/// bandwidth-optimal for large vectors.
Schedule allreduce_ring(std::int32_t p, std::int64_t count);

// ---- Rooted collectives ---------------------------------------------------

/// Binomial-tree broadcast. Arena: buf [0, c): input at root, output everywhere.
Schedule bcast_binomial(std::int32_t p, std::int64_t count, std::int32_t root);

/// Scatter + ring allgather (van de Geijn) for large broadcasts.
Schedule bcast_scatter_allgather(std::int32_t p, std::int64_t count,
                                 std::int32_t root);

/// Binomial-tree reduce. Arena: in [0,c), out [c,2c) (valid at root),
/// temp [2c,3c). Semantics: out at root == sum of in.
Schedule reduce_binomial(std::int32_t p, std::int64_t count, std::int32_t root);

/// Linear gather. Arena: in [0,c), out [c, c+p*c) at root.
Schedule gather_linear(std::int32_t p, std::int64_t count, std::int32_t root);

/// Linear scatter. Arena: in [0, p*c) at root, out [p*c, p*c+c).
Schedule scatter_linear(std::int32_t p, std::int64_t count, std::int32_t root);

/// Binomial-tree scatter (log p rounds, any root). Arena: in [0, p*c) at
/// root, relative-order staging [p*c, 2p*c), out [2p*c, 2p*c + c).
Schedule scatter_binomial(std::int32_t p, std::int64_t count, std::int32_t root);

/// Binomial-tree gather, mirror of scatter_binomial. Arena: in [0, c),
/// staging [c, c + p*c), out [c + p*c, c + 2p*c) at root.
Schedule gather_binomial(std::int32_t p, std::int64_t count, std::int32_t root);

/// Ring reduce-scatter (MPI_Reduce_scatter_block). Arena: in [0, p*c)
/// (block j = contribution to rank j), accumulator [p*c, 2p*c), out
/// [2p*c, 2p*c + c). out on rank r == elementwise sum of every rank's
/// block r.
Schedule reduce_scatter_ring(std::int32_t p, std::int64_t count);

// ---- Scan / Barrier --------------------------------------------------------

/// Inclusive scan (recursive doubling). Arena: in [0,c), out [c,2c),
/// partial [2c,3c), temp [3c,4c). out_i == sum_{j<=i} in_j.
Schedule scan_recursive_doubling(std::int32_t p, std::int64_t count);

/// Dissemination barrier: ceil(log2 p) rounds of zero-byte messages.
Schedule barrier_dissemination(std::int32_t p);

// ---- Alltoallv --------------------------------------------------------------

/// Pairwise alltoallv; counts[i][j] doubles flow from rank i to rank j.
/// Arena per rank: send blocks (row-major prefix) then recv blocks.
Schedule alltoallv_pairwise(const std::vector<std::vector<std::int64_t>>& counts);

// ---- Selection --------------------------------------------------------------

enum class Collective {
  Alltoall,
  Allgather,
  Allreduce,
  Bcast,
  Reduce,
  ReduceScatter,
  Gather,
  Scatter,
  Scan,
  Barrier,
};

/// Size-based algorithm selection mirroring common MPI defaults; `count`
/// follows each collective's convention above, `eager_threshold` (bytes)
/// separates the latency- from the bandwidth-regime algorithms.
Schedule make_collective(Collective kind, std::int32_t p, std::int64_t count,
                         std::int64_t eager_threshold = 16 * 1024,
                         std::int32_t root = 0);

/// Name of the algorithm make_collective would pick (reporting).
std::string selected_algorithm(Collective kind, std::int32_t p, std::int64_t count,
                               std::int64_t eager_threshold = 16 * 1024);

}  // namespace mr::simmpi
