// TimedExecutor: replays compiled plans on the flow-level network
// simulator to produce durations under contention.
//
// Several jobs (e.g. one collective per subcommunicator) run simultaneously
// against one machine; each job binds its plan's communicator ranks to
// machine cores. The engine consumes the plan's precomputed execution CSR
// (mixradix/simmpi/plan.hpp) — per-round op ranges, cost inputs, message
// byte counts — and executes the plan's repetition count as a loop over
// virtual message ids, so steady-state measurements never materialize
// repeated copies of the schedule. Messages follow a LogGP-flavoured model:
//   * per-round CPU serialisation: compute time + per-message send/recv
//     overheads + local copy costs;
//   * eager messages (<= eager_threshold bytes) start their network flow as
//     soon as the sender posts; the sender completes immediately;
//   * rendezvous messages start when BOTH sides have posted; the sender
//     completes with the transfer;
//   * every flow is delayed by the topological path latency and drains at
//     the max-min fair rate of the channels it crosses (simnet).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mixradix/simmpi/plan.hpp"
#include "mixradix/simmpi/schedule.hpp"
#include "mixradix/simnet/flow_sim.hpp"
#include "mixradix/topo/machine.hpp"

namespace mr::simmpi {

/// One communicator's compiled plan bound to machine cores.
struct PlanJob {
  std::shared_ptr<const Plan> plan;
  /// core_of_rank[r] = machine core hosting the plan's rank r.
  std::vector<std::int64_t> core_of_rank;
  double start_time = 0;
};

/// Legacy binding of a raw schedule (no repetition loop); run_timed wraps
/// it in an ad-hoc single-repetition plan. Prefer PlanJob — compiled plans
/// amortize the execution-structure derivation across jobs.
struct JobSpec {
  const Schedule* schedule = nullptr;
  std::vector<std::int64_t> core_of_rank;
  double start_time = 0;
};

struct TimedResult {
  double makespan = 0;              ///< completion time of the last job.
  std::vector<double> job_finish;   ///< per job, absolute completion time.
  std::int64_t total_messages = 0;  ///< counts every executed repetition.
  std::int64_t total_flow_events = 0;
  simnet::FlowSim::Stats flow_stats;  ///< network-simulator event counters.
};

/// Default completion slack handed to the flow simulator (see
/// FlowSim::FlowSim): 2% merges the cascades of nearly simultaneous
/// completions that collective traffic produces — cutting event counts by
/// an order of magnitude on big collectives — while keeping the relative
/// timing error well below the variation the experiments measure. Pass 0
/// for exact max-min timing.
inline constexpr double kDefaultCompletionSlack = 0.02;

/// Run all plan jobs to completion; deterministic for identical inputs.
/// Timing is bit-identical to executing the materialized repeat() of each
/// plan's schedule.
TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<PlanJob>& jobs,
                      double completion_slack = kDefaultCompletionSlack);

/// Legacy schedule-pointer entry point; validates each schedule and wraps
/// it in a single-repetition plan.
TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<JobSpec>& jobs,
                      double completion_slack = kDefaultCompletionSlack);

/// Convenience: duration of a single collective on `machine` with the given
/// rank->core binding.
double run_timed_single(const topo::Machine& machine, const Schedule& schedule,
                        std::vector<std::int64_t> core_of_rank,
                        double completion_slack = kDefaultCompletionSlack);

/// Plan flavour of run_timed_single.
double run_timed_plan_single(const topo::Machine& machine, const Plan& plan,
                             std::vector<std::int64_t> core_of_rank,
                             double completion_slack = kDefaultCompletionSlack);

}  // namespace mr::simmpi
