// TimedExecutor: replays compiled plans on the flow-level network
// simulator to produce durations under contention.
//
// Several jobs (e.g. one collective per subcommunicator) run simultaneously
// against one machine; each job binds its plan's communicator ranks to
// machine cores. The engine consumes the plan's precomputed execution CSR
// (mixradix/simmpi/plan.hpp) — per-round op ranges, cost inputs, message
// byte counts — and executes the plan's repetition count as a loop over
// virtual message ids, so steady-state measurements never materialize
// repeated copies of the schedule. Messages follow a LogGP-flavoured model:
//   * per-round CPU serialisation: compute time + per-message send/recv
//     overheads + local copy costs;
//   * eager messages (<= eager_threshold bytes) start their network flow as
//     soon as the sender posts; the sender completes immediately;
//   * rendezvous messages start when BOTH sides have posted; the sender
//     completes with the transfer;
//   * every flow is delayed by the topological path latency and drains at
//     the max-min fair rate of the channels it crosses (simnet).
//
// The hot path is allocation-free in steady state: message routes are
// interned once per (plan, core binding) in a per-workspace RouteTable,
// flow completions come from FlowSim's lazy deadline heap, and all engine
// scratch (message/rank state, the event heap, the flow simulator itself)
// lives in a SimWorkspace that sweeps reuse across points — one workspace
// per pool thread. ExecOptions::reference selects the pre-overhaul cost
// model (per-message route derivation, O(active-flows) completion scans,
// fresh allocations per run) with bit-identical timing, which is what
// bench/timed_hotpath measures the overhaul against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mixradix/simmpi/plan.hpp"
#include "mixradix/simmpi/schedule.hpp"
#include "mixradix/simnet/flow_sim.hpp"
#include "mixradix/topo/machine.hpp"

namespace mr::simmpi {

/// One communicator's compiled plan bound to machine cores.
struct PlanJob {
  std::shared_ptr<const Plan> plan;
  /// core_of_rank[r] = machine core hosting the plan's rank r.
  std::vector<std::int64_t> core_of_rank;
  double start_time = 0;
};

/// Legacy binding of a raw schedule (no repetition loop); run_timed wraps
/// it in an ad-hoc single-repetition plan. Prefer PlanJob — compiled plans
/// amortize the execution-structure derivation across jobs.
struct JobSpec {
  const Schedule* schedule = nullptr;
  std::vector<std::int64_t> core_of_rank;
  double start_time = 0;
};

/// Engine instrumentation for one run (bench `--cache-stats`-style output).
struct EngineStats {
  std::int64_t events_processed = 0;   ///< PostRound + StartFlow events popped.
  std::int64_t peak_event_queue = 0;   ///< high-water mark of the event heap.
  std::int64_t route_cache_hits = 0;   ///< route lookups served interned.
  std::int64_t route_cache_misses = 0; ///< route lookups that derived a path.
};

struct TimedResult {
  double makespan = 0;              ///< completion time of the last job.
  std::vector<double> job_finish;   ///< per job, absolute completion time.
  std::int64_t total_messages = 0;  ///< counts every executed repetition.
  std::int64_t total_flow_events = 0;
  simnet::FlowSim::Stats flow_stats;  ///< network-simulator event counters.
  EngineStats engine_stats;           ///< executor-level counters.
};

/// Default completion slack handed to the flow simulator (see
/// FlowSim::FlowSim): 2% merges the cascades of nearly simultaneous
/// completions that collective traffic produces — cutting event counts by
/// an order of magnitude on big collectives — while keeping the relative
/// timing error well below the variation the experiments measure. Pass 0
/// for exact max-min timing.
inline constexpr double kDefaultCompletionSlack = 0.02;

/// Reusable engine scratch arena: the flow simulator (channel lists, flow
/// arrays, completion heap), the route table, per-job message/rank state
/// and the event heap, plus the machine's channel capacities. A sweep
/// keeps one per pool thread so the 5040-order enumeration stops paying
/// allocation churn per point. Binding follows the machine: reusing a
/// workspace against a machine with a different fingerprint (name, level
/// parameters, costs) transparently rebinds; an equivalent machine keeps
/// the interned routes. Not thread-safe — one workspace per thread.
class SimWorkspace {
 public:
  SimWorkspace();
  ~SimWorkspace();
  SimWorkspace(SimWorkspace&&) noexcept;
  SimWorkspace& operator=(SimWorkspace&&) noexcept;
  SimWorkspace(const SimWorkspace&) = delete;
  SimWorkspace& operator=(const SimWorkspace&) = delete;

  /// Internal accessor for the executor (incomplete type elsewhere).
  struct Impl;
  Impl& impl() noexcept { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Tuning knobs for run_timed.
struct ExecOptions {
  double completion_slack = kDefaultCompletionSlack;
  /// Run the pre-overhaul reference engine: routes derived per message,
  /// O(active-flows) completion scans, private scratch (ignores
  /// `workspace`). Timing is bit-identical to the optimized engine — this
  /// exists so bench/timed_hotpath can measure the overhaul end to end.
  bool reference = false;
  /// Scratch arena to reuse across runs; nullptr = a private arena per run.
  SimWorkspace* workspace = nullptr;
  /// Run the static binding analyzer (mixradix/verify/binding.hpp) over the
  /// jobs before simulating; any Error-level finding (rank bound outside
  /// the machine, route the simulator cannot carry, happens-before cycle)
  /// throws mr::invalid_argument carrying the full diagnostic report
  /// instead of tripping an internal assertion mid-simulation. The
  /// Preverify analogue of the DataExecutor's schedule verification.
  bool preverify_binding = false;
};

namespace detail {

/// Engine event, exposed for the determinism test. The comparator is a
/// TOTAL order (time, then kind, job, a) so the pop order of simultaneous
/// events never depends on push order — std::priority_queue leaves the
/// order of equal keys unspecified, which would make event processing
/// sensitive to incidental queue history.
enum class EventKind : std::int8_t { PostRound = 0, StartFlow = 1 };

struct Event {
  double time = 0;
  EventKind kind = EventKind::PostRound;
  std::int32_t job = 0;
  std::int32_t a = 0;  ///< rank for PostRound, virtual msg for StartFlow.
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    if (job != other.job) return job > other.job;
    return a > other.a;
  }
};

}  // namespace detail

/// Run all plan jobs to completion; deterministic for identical inputs.
/// Timing is bit-identical to executing the materialized repeat() of each
/// plan's schedule.
TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<PlanJob>& jobs,
                      const ExecOptions& options);
TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<PlanJob>& jobs,
                      double completion_slack = kDefaultCompletionSlack);

/// Legacy schedule-pointer entry point; validates each schedule and wraps
/// it in a single-repetition plan.
TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<JobSpec>& jobs,
                      const ExecOptions& options);
TimedResult run_timed(const topo::Machine& machine,
                      const std::vector<JobSpec>& jobs,
                      double completion_slack = kDefaultCompletionSlack);

/// Convenience: duration of a single collective on `machine` with the given
/// rank->core binding.
double run_timed_single(const topo::Machine& machine, const Schedule& schedule,
                        std::vector<std::int64_t> core_of_rank,
                        double completion_slack = kDefaultCompletionSlack);

/// Plan flavour of run_timed_single. The plan is borrowed for the call —
/// no shared_ptr needed (both overload families feed one non-owning
/// internal entry point).
double run_timed_plan_single(const topo::Machine& machine, const Plan& plan,
                             std::vector<std::int64_t> core_of_rank,
                             double completion_slack = kDefaultCompletionSlack);

}  // namespace mr::simmpi
