// PlanCache: thread-safe memoization of compile_plan.
//
// A sweep evaluates every (order, size) point of an h!-order enumeration,
// but the compiled artifact depends only on (algorithm, p, count, root,
// repetitions) — the cache makes schedule generation (and, in verifying
// builds, static analysis) run exactly once per distinct key across all
// orders and all sweep worker threads. Concurrent first requests for the
// same key block on one compilation (promise/future under the map lock);
// no key is ever compiled twice.
//
// The shared() singleton is what the harness and World use; constructing a
// private PlanCache (tests, isolation) works too. Bypassing the cache
// (SweepConfig::use_plan_cache = false, bench --no-plan-cache) compiles
// per point and must produce byte-identical sweep output.
// An optional bounded mode (capacity > 0, or set_capacity()) turns the
// cache into an LRU: when a miss would grow it past `capacity` entries,
// the least-recently-requested entries are dropped (Stats::evictions).
// Eviction only forgets — an evicted plan still in use stays alive through
// its shared_ptr, and re-requesting its key simply recompiles. The default
// capacity 0 keeps the original unbounded behaviour.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "mixradix/simmpi/plan.hpp"

namespace mr::simmpi {

struct PlanKey {
  std::string algorithm;
  std::int32_t nranks = 0;
  std::int64_t count = 0;
  std::int32_t root = 0;
  int repetitions = 1;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const noexcept;
};

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< == number of compilations started.
    std::uint64_t evictions = 0;  ///< entries dropped by the LRU bound.
    std::size_t entries = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// Unbounded by default; `capacity > 0` bounds the cache to that many
  /// entries with LRU eviction (see the header comment).
  explicit PlanCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// The plan for `key`, compiling it on first request. Concurrent callers
  /// of the same key share one compilation. A compilation failure (unknown
  /// algorithm, unsupported p) rethrows for every requester of that key.
  std::shared_ptr<const Plan> get(const PlanKey& key);

  Stats stats() const;
  /// Drop every entry and reset the counters.
  void clear();

  /// Change the LRU bound; 0 = unbounded. Shrinking below the current
  /// entry count evicts the excess immediately (oldest first).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Process-wide cache used by the harness and World.
  static PlanCache& shared();

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const Plan>> plan;
    /// This key's position in lru_ (most recent at the front).
    std::list<PlanKey>::iterator recency;
  };

  /// Precondition: mutex_ held. Drop least-recent entries until the bound
  /// holds. In-flight compilations may be evicted too — their requesters
  /// hold the shared_future, so the result (or exception) still reaches
  /// every one of them; the cache merely forgets the key.
  void enforce_capacity_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_ = 0;
  std::unordered_map<PlanKey, Entry, PlanKeyHash> map_;
  std::list<PlanKey> lru_;  ///< keys, most recently requested first.
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mr::simmpi
