// PlanCache: thread-safe memoization of compile_plan.
//
// A sweep evaluates every (order, size) point of an h!-order enumeration,
// but the compiled artifact depends only on (algorithm, p, count, root,
// repetitions) — the cache makes schedule generation (and, in verifying
// builds, static analysis) run exactly once per distinct key across all
// orders and all sweep worker threads. Concurrent first requests for the
// same key block on one compilation (promise/future under the map lock);
// no key is ever compiled twice.
//
// The shared() singleton is what the harness and World use; constructing a
// private PlanCache (tests, isolation) works too. Bypassing the cache
// (SweepConfig::use_plan_cache = false, bench --no-plan-cache) compiles
// per point and must produce byte-identical sweep output.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "mixradix/simmpi/plan.hpp"

namespace mr::simmpi {

struct PlanKey {
  std::string algorithm;
  std::int32_t nranks = 0;
  std::int64_t count = 0;
  std::int32_t root = 0;
  int repetitions = 1;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const noexcept;
};

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< == number of compilations started.
    std::size_t entries = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// The plan for `key`, compiling it on first request. Concurrent callers
  /// of the same key share one compilation. A compilation failure (unknown
  /// algorithm, unsupported p) rethrows for every requester of that key.
  std::shared_ptr<const Plan> get(const PlanKey& key);

  Stats stats() const;
  /// Drop every entry and reset the counters.
  void clear();

  /// Process-wide cache used by the harness and World.
  static PlanCache& shared();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<PlanKey, std::shared_future<std::shared_ptr<const Plan>>,
                     PlanKeyHash>
      map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mr::simmpi
