// World / Communicator: the MPI-flavoured facade over the simulator.
//
// Examples and applications hold a World (a machine with one process per
// core), reorder it with a mixed-radix order exactly like the paper's
// MPI_Comm_split deployment, split it into subcommunicators, and time
// collectives — without touching schedules or executors directly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mixradix/mr/permutation.hpp"
#include "mixradix/mr/reorder.hpp"
#include "mixradix/simmpi/collectives.hpp"
#include "mixradix/simmpi/timed_executor.hpp"
#include "mixradix/topo/machine.hpp"

namespace mr {
class Engine;  // mixradix/engine/engine.hpp
}  // namespace mr

namespace mr::simmpi {

class World;

/// A set of processes with contiguous ranks 0..size-1, each bound to a
/// machine core. Cheap to copy (shares the World's machine).
class Communicator {
 public:
  std::int32_t size() const { return static_cast<std::int32_t>(cores_.size()); }

  /// Core hosting communicator rank r.
  std::int64_t core_of(std::int32_t rank) const;
  const std::vector<std::int64_t>& cores() const noexcept { return cores_; }

  /// MPI_Comm_split: processes with the same color form a new communicator,
  /// ordered by (key, current rank). colors/keys are indexed by rank.
  std::vector<Communicator> split(const std::vector<std::int64_t>& colors,
                                  const std::vector<std::int64_t>& keys) const;

  /// Split into consecutive blocks of `comm_size` ranks (§3.2's coloring).
  std::vector<Communicator> split_blocks(std::int64_t comm_size) const;

  /// MPI_Comm_split_type "guided mode" (MPI-4, §3.2): one communicator per
  /// machine component at hierarchy `level` that hosts members of this
  /// communicator; members keep their relative rank order.
  std::vector<Communicator> split_by_level(int level) const;

  /// Simulated duration of one collective on this communicator, alone on
  /// the machine. `count` follows the collective's convention (doubles).
  /// Plans resolve through the World's engine (its cache, its stats).
  double time_collective(Collective kind, std::int64_t count,
                         std::int32_t root = 0) const;

  /// Simulated duration when every communicator in `comms` runs `kind`
  /// simultaneously (returns the makespan). Routed through the engine of
  /// the first communicator's World.
  static double time_concurrent(const std::vector<Communicator>& comms,
                                Collective kind, std::int64_t count);

  const topo::Machine& machine() const noexcept { return *machine_; }

  /// The engine of the World this communicator descends from.
  Engine& engine() const noexcept { return *engine_; }

 private:
  friend class World;
  Communicator(Engine* engine, std::shared_ptr<const topo::Machine> machine,
               std::vector<std::int64_t> cores);

  Engine* engine_;  ///< non-owning; the World's engine outlives its comms.
  std::shared_ptr<const topo::Machine> machine_;
  std::vector<std::int64_t> cores_;  ///< rank -> core.
};

/// One process per core of a machine. Every communicator split off the
/// World inherits its engine, so a whole World's simulations stay inside
/// one scoped context.
class World {
 public:
  /// A World whose collectives resolve plans through `engine`, which must
  /// outlive the World and every Communicator split from it.
  World(Engine& engine, topo::Machine machine);
  /// Backward-compat shim: a World on Engine::shared().
  explicit World(topo::Machine machine);

  std::int32_t size() const;
  const topo::Machine& machine() const noexcept { return *machine_; }

  /// MPI_COMM_WORLD with the initial (hardware-order) ranks.
  Communicator comm_world() const;

  /// The paper's first use case: a new full communicator whose rank r is
  /// the core carrying reordered rank r (MPI_Comm_split with the reordered
  /// rank as key).
  Communicator reordered(const Order& order) const;

  /// The engine this World's simulations run through.
  Engine& engine() const noexcept { return *engine_; }

 private:
  Engine* engine_;  ///< non-owning.
  std::shared_ptr<const topo::Machine> machine_;
};

}  // namespace mr::simmpi
