// Communication schedules: the intermediate representation between
// collective algorithms and the two executors.
//
// A collective algorithm (ring allgather, pairwise alltoall, ...) is
// compiled into one RankProgram per communicator rank: a sequence of
// rounds, each posting a batch of non-blocking sends/receives plus local
// copies/reductions, then waiting for all of them (the classic
// post-then-waitall structure of MPI collective implementations).
//
// The same schedule feeds:
//  * DataExecutor  — moves real doubles between per-rank arenas, so the
//    algorithm's *semantics* are testable (does allreduce produce the sum?);
//  * TimedExecutor — replays the schedule on the flow-level network
//    simulator, producing *durations* under contention.
//
// Messages are matched by explicit id (assigned at generation time), not
// by (source, tag) matching: generated schedules are deterministic, so
// runtime matching would only add failure modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mr::simmpi {

/// A contiguous region of a rank's arena, in doubles.
struct Region {
  std::int64_t offset = 0;
  std::int64_t count = 0;
};

/// How received (or copied) data combines into the destination region.
enum class Combine { Replace, Sum, Max, Min, Prod };

/// One point-to-point message. Ranks are communicator ranks.
struct MsgInfo {
  std::int32_t src = -1;
  std::int32_t dst = -1;
  Region src_region;  ///< in the sender's arena.
  Region dst_region;  ///< in the receiver's arena.
  Combine combine = Combine::Replace;

  std::int64_t bytes() const { return src_region.count * 8; }
};

struct SendOp {
  std::int32_t msg = -1;
};
struct RecvOp {
  std::int32_t msg = -1;
};
/// Local copy/reduction within one arena, executed at round start.
struct CopyOp {
  Region src;
  Region dst;
  Combine combine = Combine::Replace;
};

struct Round {
  std::vector<SendOp> sends;
  std::vector<RecvOp> recvs;
  std::vector<CopyOp> copies;
  double compute_seconds = 0;  ///< algorithm-inherent local work.
};

struct RankProgram {
  std::vector<Round> rounds;
};

struct Schedule {
  std::int32_t nranks = 0;
  std::int64_t arena_size = 0;  ///< doubles per rank.
  std::vector<MsgInfo> messages;
  std::vector<RankProgram> programs;  ///< one per rank.

  /// Total payload bytes over all messages.
  std::int64_t total_bytes() const;

  /// Structural validation: every op references a valid message with this
  /// rank as the right endpoint, every message is sent and received exactly
  /// once, regions stay inside the arena, and matched src/dst counts agree.
  /// Returns a diagnostic on failure, empty string when well-formed.
  std::string validate() const;
};

/// Incremental construction helper used by the algorithm generators.
class ScheduleBuilder {
 public:
  ScheduleBuilder(std::int32_t nranks, std::int64_t arena_size);

  /// Add a message plus its SendOp (sender round) and RecvOp (receiver
  /// round). Missing rounds are created on both sides.
  void message(int send_round, std::int32_t src, Region src_region,
               int recv_round, std::int32_t dst, Region dst_region,
               Combine combine = Combine::Replace);

  /// Convenience for the common same-round case.
  void exchange(int round, std::int32_t src, Region src_region,
                std::int32_t dst, Region dst_region,
                Combine combine = Combine::Replace) {
    message(round, src, src_region, round, dst, dst_region, combine);
  }

  void copy(int round, std::int32_t rank, Region src, Region dst,
            Combine combine = Combine::Replace);

  void compute(int round, std::int32_t rank, double seconds);

  /// Finalise; validates the result (throwing on generator bugs). Under
  /// the MIXRADIX_VERIFY_SCHEDULES build option the result is additionally
  /// run through the static analyzer (mixradix/verify/verify.hpp) and any
  /// Error-level finding — deadlock, write race, conservation violation —
  /// throws with the full diagnostic report.
  Schedule build() &&;

 private:
  Round& round_of(std::int32_t rank, int round);
  Schedule schedule_;
};

namespace detail {

/// RAII marker set by plan compilation (mixradix/simmpi/plan.hpp) while it
/// generates schedules on this thread. In MIXRADIX_VERIFY_SCHEDULES builds,
/// ScheduleBuilder::build() then skips its per-build static analysis:
/// compile_plan analyzes the finished plan exactly once instead, so a
/// memoized plan costs one verify::analyze per distinct key, not one per
/// intermediate build(). Nests safely.
class PlanCompileScope {
 public:
  PlanCompileScope() noexcept;
  ~PlanCompileScope();
  PlanCompileScope(const PlanCompileScope&) = delete;
  PlanCompileScope& operator=(const PlanCompileScope&) = delete;
};

/// True while a PlanCompileScope is live on this thread.
bool plan_compile_active() noexcept;

}  // namespace detail

/// Back-to-back repetition of a schedule (steady-state measurements):
/// ranks run `times` copies of their program sequentially. Prefer a Plan
/// with a repetition count (mixradix/simmpi/plan.hpp) for execution — it
/// loops over one copy of the IR instead of materializing `times` copies.
Schedule repeat(const Schedule& schedule, int times);

/// Sequential composition: all schedules must have the same nranks; each
/// rank runs part 0's rounds, then part 1's, and so on. No barrier is
/// inserted between parts — exactly like consecutive MPI calls, ordering
/// is enforced only by each rank's own program and by message matching.
Schedule concat(const std::vector<Schedule>& parts);

/// Merge independent schedules over disjoint rank sets into one schedule
/// over `total_ranks` ranks; `rank_of[k][i]` is the global rank of
/// communicator k's rank i. Used to run several subcommunicators'
/// collectives simultaneously as a single job.
Schedule merge(const std::vector<Schedule>& parts,
               const std::vector<std::vector<std::int32_t>>& rank_of,
               std::int32_t total_ranks);

}  // namespace mr::simmpi
