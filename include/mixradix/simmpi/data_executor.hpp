// DataExecutor: runs a Schedule for *semantics*, not timing.
//
// Each rank owns an arena of doubles; the executor moves real payloads so
// tests can assert that, e.g., an allreduce schedule actually produces the
// elementwise sum on every rank. Within a round, operations execute in the
// order copies -> sends (payload snapshot) -> receives (combine), which is
// the concurrency contract generators rely on: a region may be sent and
// overwritten by a receive in the same round.
#pragma once

#include <memory>
#include <vector>

#include "mixradix/simmpi/plan.hpp"
#include "mixradix/simmpi/schedule.hpp"

namespace mr::simmpi {

/// When the DataExecutor statically verifies its schedule.
enum class Preverify {
  Off,        ///< trust the schedule; dynamic deadlock check only.
  OnDeadlock, ///< run the analyzer when the dynamic check trips, for the
              ///  happens-before cycle trace (no cost on the happy path).
  Upfront,    ///< analyze before executing anything; throw when not clean.
};

/// Upfront in MIXRADIX_VERIFY_SCHEDULES builds, OnDeadlock otherwise.
#ifdef MIXRADIX_VERIFY_SCHEDULES
inline constexpr Preverify kDefaultPreverify = Preverify::Upfront;
#else
inline constexpr Preverify kDefaultPreverify = Preverify::OnDeadlock;
#endif

class DataExecutor {
 public:
  /// Takes its own copy of the schedule: executors outlive temporaries.
  explicit DataExecutor(Schedule schedule,
                        Preverify preverify = kDefaultPreverify);

  /// Compiled-plan flavour: repetitions > 1 are materialized (data
  /// semantics need the real repeated rounds), and the plan's embedded
  /// static-analysis report — proved once at compile time — satisfies the
  /// Preverify modes without re-running the analyzer.
  explicit DataExecutor(const std::shared_ptr<const Plan>& plan,
                        Preverify preverify = kDefaultPreverify);

  /// Mutable arena of `rank` (size = schedule.arena_size), for initialising
  /// inputs before run() and reading outputs after.
  std::vector<double>& arena(std::int32_t rank);
  const std::vector<double>& arena(std::int32_t rank) const;

  /// Execute every round of every rank; throws mr::invalid_argument if the
  /// schedule deadlocks (a receive whose matching send can never execute).
  /// Unless preverify is Off, the thrown message carries the static
  /// analyzer's happens-before cycle trace (rank/round/message chain).
  void run();

 private:
  /// Shared tail of both constructors; `compile_report` is the plan's
  /// embedded analysis (nullptr when absent or not reusable).
  void init(const verify::Report* compile_report);
  bool round_ready(std::int32_t rank) const;
  void execute_round(std::int32_t rank);

  Schedule schedule_;
  Preverify preverify_;
  std::vector<std::vector<double>> arenas_;
  std::vector<std::size_t> pc_;                     ///< next round per rank.
  std::vector<std::vector<double>> mailbox_;        ///< payload per message.
  std::vector<bool> delivered_;                     ///< message sent yet?
};

/// Apply `combine` elementwise: dst = dst (op) src.
void combine_into(Combine combine, const double* src, double* dst,
                  std::int64_t count);

}  // namespace mr::simmpi
