// Compiled plans: the immutable execution artifact between schedule
// generation and the executors.
//
// A Schedule depends only on (algorithm, p, count, root) — never on the
// rank->core mapping — so the sweep engine's h! enumeration orders can all
// replay the *same* compiled artifact. A Plan packages:
//
//  * the single-repetition Schedule (the IR),
//  * a repetition count executed as a loop — back-to-back steady-state
//    operations no longer materialize `repeat()` copies of the IR,
//  * a flattened, machine-independent execution structure (per-rank
//    per-round message CSR, per-round cost inputs, per-message byte
//    counts) that the TimedExecutor consumes directly instead of
//    re-deriving from the nested Schedule per job,
//  * in MIXRADIX_VERIFY_SCHEDULES builds, the static analyzer's Report —
//    proved once at compile time and reused by every consumer (the
//    DataExecutor's Preverify modes included).
//
// Plans are compiled by `compile_plan` (registry algorithms) or wrapped
// around ad-hoc schedules by `make_plan` (application schedules: CG,
// SPLATT). The PlanCache (mixradix/simmpi/plan_cache.hpp) memoizes
// compile_plan by (algorithm, p, count, root, repetitions).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mixradix/simmpi/schedule.hpp"
#include "mixradix/verify/verify.hpp"

namespace mr::simmpi {

/// Flattened execution structure of one Schedule, derived once at plan
/// compile time. All indices are machine-independent; the executors add
/// machine costs (overheads, copy rates) at run time.
struct PlanExec {
  /// CSR rank -> rounds: rank r's rounds occupy the flattened round range
  /// [rank_rounds_begin[r], rank_rounds_begin[r + 1]).
  std::vector<std::int64_t> rank_rounds_begin;
  /// Per flattened round: algorithm-inherent compute seconds and the total
  /// doubles written by local copies (the reduce-rate cost input).
  std::vector<double> round_compute;
  std::vector<std::int64_t> round_copy_doubles;
  /// CSR round -> ops: round i's sends are send_msg[send_begin[i] ..
  /// send_begin[i + 1]), its receives recv_msg[recv_begin[i] ..
  /// recv_begin[i + 1]). Op order matches the Schedule's.
  std::vector<std::int64_t> send_begin;
  std::vector<std::int64_t> recv_begin;
  std::vector<std::int32_t> send_msg;
  std::vector<std::int32_t> recv_msg;
  /// Payload bytes per message id.
  std::vector<std::int64_t> msg_bytes;

  std::int64_t rounds_of(std::int32_t rank) const {
    return rank_rounds_begin[static_cast<std::size_t>(rank) + 1] -
           rank_rounds_begin[static_cast<std::size_t>(rank)];
  }
};

/// Derive the flattened execution structure from a schedule.
PlanExec derive_exec(const Schedule& schedule);

struct Plan {
  Schedule schedule;       ///< single-repetition IR.
  int repetitions = 1;     ///< executed as a loop, never materialized.
  std::string algorithm;   ///< registry name, or an ad-hoc label.
  PlanExec exec;
  /// Static verification report of `schedule`; non-null iff the plan was
  /// compiled in a MIXRADIX_VERIFY_SCHEDULES build (and then proved clean).
  std::shared_ptr<const verify::Report> report;

  std::int32_t nranks() const { return schedule.nranks; }
  /// Messages per repetition.
  std::int64_t messages_per_rep() const {
    return static_cast<std::int64_t>(schedule.messages.size());
  }
  std::int64_t total_messages() const {
    return messages_per_rep() * repetitions;
  }
};

/// Wrap an already-generated schedule (validated by its builder) into a
/// plan: derives the execution structure, no verification, no cache.
Plan make_plan(Schedule schedule, int repetitions = 1,
               std::string algorithm = {});

/// Compile registry algorithm `name` into a plan. In
/// MIXRADIX_VERIFY_SCHEDULES builds the finished schedule is statically
/// analyzed exactly once — the per-build() analysis inside the generator is
/// suppressed for the duration — and the (required clean) report is
/// embedded in the plan.
Plan compile_plan(const std::string& algorithm, std::int32_t p,
                  std::int64_t count, std::int32_t root = 0,
                  int repetitions = 1);

}  // namespace mr::simmpi
