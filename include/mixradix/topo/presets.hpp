// Machine presets matching the two clusters of the paper's evaluation.
//
// Absolute link parameters are engineering estimates for the published
// hardware (Omni-Path 100 Gb/s, Slingshot-11 200 Gb/s, Xeon Gold 6130F,
// EPYC 7763); the reproduction targets the *shape* of the results, which
// depends on the bandwidth taper across levels and the sharing degrees,
// not on the exact constants.
#pragma once

#include "mixradix/topo/machine.hpp"

namespace mr::topo {

/// Hydra (TU Wien): dual 16-core Xeon Gold 6130F, one or two 100 Gb/s
/// Omni-Path NICs. Hierarchy ⟦nodes, 2, 2, 8⟧ — the paper splits each
/// 16-core socket into a fake level of 2 x 8 cores.
Machine hydra(int nodes, int nics = 1);

/// LUMI (CSC): dual 64-core EPYC 7763, 4 NUMA domains per socket, 2 L3
/// complexes per NUMA, Slingshot-11 200 Gb/s. Hierarchy ⟦nodes, 2, 4, 2, 8⟧.
Machine lumi(int nodes);

/// A single LUMI compute node, ⟦2, 4, 2, 8⟧ (socket outermost): the Fig. 9
/// strong-scaling substrate, where core selection happens within one node.
Machine lumi_node();

/// A single Hydra compute node, ⟦2, 2, 8⟧.
Machine hydra_node(int nics = 1);

/// A tiny ⟦2, 2, 4⟧ machine (Fig. 1/2 of the paper) with round-number link
/// speeds and zero per-message costs, so unit tests can predict simulated
/// times analytically.
Machine testbox();

/// A generic single-switch cluster for examples: ⟦nodes, sockets, cores⟧.
Machine generic(int nodes, int sockets, int cores_per_socket);

}  // namespace mr::topo
