// Machine: a performance-annotated hierarchical machine model.
//
// The mixed-radix algorithms only need the radix vector; the simulator
// additionally needs, per hierarchy level, the capacity and latency of the
// link that a message crosses at that level, and (for the roofline compute
// model) the memory bandwidth shared by the cores of one component.
//
// Orientation follows Hierarchy: level 0 is the outermost (node) level,
// depth-1 the innermost (core). The "uplink" of a component at level k is
// the channel connecting it to its enclosing level-(k-1) component; a
// message between two cores whose coordinates first differ at level fd
// climbs through the uplinks of every component at levels [fd, depth-1] on
// both sides (hop_cost == depth - fd uplinks per side).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixradix/mr/hierarchy.hpp"

namespace mr::topo {

/// Per-level link and memory parameters.
struct LevelSpec {
  std::string name;          ///< "node", "socket", "numa", "l3", "core", ...
  int radix = 0;             ///< sub-components per component of the parent.
  double link_latency = 0;   ///< seconds added per traversal of this uplink.
  double link_bandwidth = 0; ///< bytes/s capacity of one component's uplink.
  /// Memory bandwidth (bytes/s) delivered by one component at this level to
  /// the cores beneath it; 0 = this level imposes no memory ceiling.
  double mem_bandwidth = 0;
};

/// LogGP-style per-message CPU costs and protocol switches.
struct MessagingCosts {
  double send_overhead = 2.5e-7;   ///< sender CPU seconds per message.
  double recv_overhead = 2.5e-7;   ///< receiver CPU seconds per message.
  double base_latency = 3.0e-7;    ///< fixed wire-up cost per message.
  std::int64_t eager_threshold = 16 * 1024;  ///< bytes; above = rendezvous.
  double reduce_seconds_per_byte = 2.5e-11;  ///< local reduction cost (~40 GB/s).
};

/// A homogeneous hierarchical machine.
class Machine {
 public:
  Machine(std::string name, std::vector<LevelSpec> levels,
          MessagingCosts costs = {}, double core_flops = 2.0e9 * 8);

  const std::string& name() const noexcept { return name_; }
  const Hierarchy& hierarchy() const noexcept { return hierarchy_; }
  int depth() const noexcept { return hierarchy_.depth(); }
  std::int64_t cores() const noexcept { return hierarchy_.total(); }
  const std::vector<LevelSpec>& levels() const noexcept { return levels_; }
  const LevelSpec& level(int k) const;
  const MessagingCosts& costs() const noexcept { return costs_; }

  /// Peak floating-point rate of one core (FLOP/s), for compute models.
  double core_flops() const noexcept { return core_flops_; }

  /// Component (0-based, machine-wide) hosting `core` at level k.
  std::int64_t component_of(std::int64_t core, int level) const;

  /// Total number of components summed over all levels (channel sizing).
  std::int64_t total_components() const noexcept { return total_components_; }

  /// Machine-wide dense id of (level, component): level offsets are
  /// cumulative component counts of the outer levels.
  std::int64_t component_id(int level, std::int64_t component_in_level) const;

  /// One-way latency of a message between two cores: base latency plus the
  /// per-level hop latencies of every uplink crossed (both sides).
  double path_latency(std::int64_t core_a, std::int64_t core_b) const;

  /// Variants of this machine (builders, cheap to copy).
  Machine with_nodes(int nodes) const;           ///< change the level-0 radix.
  Machine with_nic_scale(double factor) const;   ///< scale node uplink bw (2 NICs => 2.0).
  Machine with_costs(MessagingCosts costs) const;

  /// Human-readable multi-line description (examples / debugging).
  std::string describe() const;

 private:
  std::string name_;
  std::vector<LevelSpec> levels_;
  Hierarchy hierarchy_;
  MessagingCosts costs_;
  double core_flops_;
  std::vector<std::int64_t> level_offset_;  ///< prefix sums of components_at.
  std::int64_t total_components_ = 0;
};

/// The parameters that determine a machine's channel capacities, routes and
/// cost model, rendered to a canonical string at full double precision. Two
/// Machine instances with equal fingerprints are interchangeable for every
/// derived structure (interned routes, channel capacities, static bounds) —
/// pointer identity is NOT a safe test, since a new machine can reuse a
/// dead one's address. Used by SimWorkspace rebinding and the
/// verify::binding::BoundCache key.
std::string machine_fingerprint(const Machine& machine);

}  // namespace mr::topo
