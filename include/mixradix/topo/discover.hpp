// Host topology discovery — the hwloc substitute.
//
// The reordering algorithm only needs the radix vector of the machine it
// runs on; on Linux that is derivable from sysfs. Discovery returns
// std::nullopt when the host is heterogeneous (different core counts per
// socket, §3.2 constraint 2) or when sysfs is unavailable, in which case
// callers should fall back to a preset or a user-provided hierarchy.
#pragma once

#include <optional>
#include <string>

#include "mixradix/mr/hierarchy.hpp"

namespace mr::topo {

/// The per-node hierarchy of the current host: ⟦sockets, numa-per-socket,
/// cores-per-numa⟧, with single-element levels collapsed. Reads sysfs under
/// `sysfs_root` (overridable for tests).
std::optional<Hierarchy> discover_host(const std::string& sysfs_root = "/sys");

}  // namespace mr::topo
